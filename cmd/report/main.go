// Command report regenerates the paper's evaluation and writes a single
// self-contained HTML page with every table and figure as inline SVG.
//
//	go run ./cmd/report -o report.html
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"

	"repro/internal/experiments"
	"repro/internal/profiling"
	"repro/internal/report"
)

func main() {
	out := flag.String("o", "report.html", "output file")
	verbose := flag.Bool("v", false, "progress to stderr")
	jobs := flag.Int("jobs", runtime.NumCPU(), "max concurrent simulations (output is identical for any value)")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile to this file on exit")
	flag.Parse()

	stopProf, err := profiling.Start(*cpuprofile, *memprofile)
	if err != nil {
		fatal(err)
	}
	defer stopProf()

	r := experiments.NewRunner()
	r.Jobs = *jobs
	if *verbose {
		r.Progress = os.Stderr
	}
	data, err := report.Collect(r)
	if err != nil {
		fatal(err)
	}
	f, err := os.Create(*out)
	if err != nil {
		fatal(err)
	}
	if err := report.Render(f, data); err != nil {
		f.Close()
		fatal(err)
	}
	if err := f.Close(); err != nil {
		fatal(err)
	}
	fmt.Printf("wrote %s\n", *out)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "report:", err)
	os.Exit(1)
}
