// Command comasim runs one COMA simulation configuration and prints the
// full measurement record: execution-time breakdown, read-node-miss rate,
// bus traffic by class and protocol counters.
package main

import (
	"flag"
	"fmt"

	"repro/internal/config"
	"repro/internal/config/flags"
	"repro/internal/core"
)

func main() {
	flags.SetUsage("comasim", "run one COMA simulation configuration and print the full measurement record")
	app := flag.String("app", "radix", "workload name (see -list)")
	list := flag.Bool("list", false, "list workloads and exit")
	ppn := flag.Int("procs-per-node", 1, "processors per node (1, 2 or 4)")
	mp := flag.String("mp", "50%", "memory pressure: 6%, 50%, 75%, 81%, 87%")
	ways := flag.Int("am-ways", 4, "attraction-memory associativity")
	dramBW := flag.Float64("dram-bw", 1, "DRAM bandwidth multiplier")
	ncBW := flag.Float64("nc-bw", 1, "node-controller bandwidth multiplier")
	busBW := flag.Float64("bus-bw", 1, "bus bandwidth multiplier")
	inclusive := flag.Bool("inclusive", true, "inclusive cache hierarchy")
	numa := flag.Bool("numa", false, "run the CC-NUMA baseline machine instead of COMA")
	update := flag.Bool("write-update", false, "write-update protocol instead of invalidation")
	fidelity := flags.Fidelity()
	flag.Parse()

	if *list {
		for _, n := range core.Workloads() {
			fmt.Println(n)
		}
		for _, n := range core.MicroWorkloads() {
			fmt.Println(n)
		}
		return
	}
	pressure, err := config.PressureByLabel(*mp)
	if err != nil {
		fatal(err)
	}
	tr, err := core.Workload(*app, 16)
	if err != nil {
		fatal(err)
	}
	cfg := core.Baseline(*ppn, pressure)
	cfg.AMWays = *ways
	cfg.DRAMBandwidth = *dramBW
	cfg.NCBandwidth = *ncBW
	cfg.BusBandwidth = *busBW
	cfg.Inclusive = *inclusive
	cfg.Policy.WriteUpdate = *update
	cfg.Fidelity = fidelity()
	run := core.Run
	if *numa {
		if cfg.Fidelity.Sampled() {
			fatal(fmt.Errorf("sampled fidelity is not implemented for the CC-NUMA baseline machine"))
		}
		run = core.RunNUMA
	}
	res, err := run(tr, cfg)
	if err != nil {
		fatal(err)
	}

	system := "COMA"
	if *numa {
		system = "CC-NUMA baseline"
	} else if *update {
		system = "COMA (write-update)"
	}
	fmt.Printf("workload          %s (WS %d KB)\n", *app, tr.WorkingSet/1024)
	fmt.Printf("configuration     %s: %d procs/node, MP %s, %d-way AM, BW dram=%.2g nc=%.2g bus=%.2g\n",
		system, *ppn, pressure.Label, *ways, *dramBW, *ncBW, *busBW)
	fmt.Printf("execution time    %v\n", res.ExecTime)
	b := res.Breakdown()
	fmt.Printf("breakdown (mean)  busy=%.0f slc=%.0f am=%.0f remote=%.0f sync=%.0f ns\n",
		b.Busy, b.SLC, b.AM, b.Remote, b.Sync)
	fmt.Printf("reads             %d (node misses %d, RNMr %.4f)\n",
		res.Reads, res.ReadNodeMisses, res.RNMr())
	fmt.Printf("bus occupancy     read=%v write=%v replace=%v (total %v)\n",
		res.BusOccupancy[0], res.BusOccupancy[1], res.BusOccupancy[2], res.BusTotal())
	p := res.Protocol
	fmt.Printf("protocol          readmiss=%d writemiss=%d upgrades=%d cold=%d injects=%d promotes=%d shared-drops=%d forced-drops=%d\n",
		p.ReadMisses, p.WriteMisses, p.Upgrades, p.ColdAllocs, p.Injects, p.Promotes, p.SharedDrops, p.ForcedDrops)
	fmt.Printf("utilization       bus=%.1f%% max-dram=%.1f%%\n",
		100*res.BusUtilization, 100*res.MaxDRAMUtilization())
	fmt.Printf("read latency      median<=%dns p99<=%dns  [%s]\n",
		res.ReadLatency.Quantile(0.5), res.ReadLatency.Quantile(0.99), &res.ReadLatency)
	fmt.Printf("load imbalance    %.3f (slowest processor / mean finish)\n", res.Imbalance())
	if rep := res.Fidelity; rep != nil {
		fmt.Printf("fidelity          sampled %d/%d/%dns: %d windows, %.1f%% detailed, lambda=%.2f (exec-time RSE %.1f%%)\n",
			rep.WarmupNs, rep.WindowNs, rep.PeriodNs, rep.Windows,
			100*rep.Coverage, rep.Lambda, 100*rep.Confidence.ExecTime)
	}
}

func fatal(err error) {
	flags.Check("comasim", err)
}
