// Command bench is the tracked whole-simulation benchmark harness: it
// runs the Figure 2 (app, config) matrix end to end on a fresh machine
// per run, measures wall clock, allocations and peak RSS, and merges the
// numbers into BENCH_results.json at the repository root so the perf
// trajectory is visible across PRs.
//
// Usage:
//
//	go run ./cmd/bench                  # full Figure 2 matrix, 16 procs
//	go run ./cmd/bench -quick           # CI-sized: 8 procs, ppn {1,4}
//	go run ./cmd/bench -label after     # tag the entry
//
// The JSON schema is documented in README.md ("Benchmarking"). Entries
// are keyed by label: rerunning with an existing label replaces that
// entry in place, so the file accumulates one entry per tracked point
// (e.g. "before" and "after" for a perf PR).
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"

	"repro/internal/apps"
	"repro/internal/config"
	"repro/internal/config/flags"
	"repro/internal/machine"
	"repro/internal/trace"
)

// Run is one (application, configuration) cell of the benchmark matrix.
type Run struct {
	App      string  `json:"app"`
	PPN      int     `json:"ppn"`
	MP       string  `json:"mp"`
	Refs     int64   `json:"refs"`
	NsBest   int64   `json:"ns"`
	NsPerRef float64 `json:"ns_per_ref"`
	Allocs   int64   `json:"allocs"`
}

// Totals aggregates the matrix.
type Totals struct {
	NsPerRef     float64 `json:"ns_per_ref"`
	RefsPerSec   float64 `json:"refs_per_sec"`
	AllocsPerRun float64 `json:"allocs_per_run"`
	PeakRSSBytes int64   `json:"peak_rss_bytes"`
}

// Entry is one tracked benchmark point.
type Entry struct {
	Label  string `json:"label"`
	Date   string `json:"date"`
	Go     string `json:"go"`
	NumCPU int    `json:"num_cpu"`
	Procs  int    `json:"procs"`
	Quick  bool   `json:"quick"`
	Iters  int    `json:"iters"`
	Note   string `json:"note,omitempty"`
	// Fidelity is "sampled" when the matrix ran under SMARTS-style
	// sampled fast-forward; empty for exact entries (the default).
	Fidelity string `json:"fidelity,omitempty"`
	// SpeedupVsExact is the wall-clock ratio of the exact twin of each
	// cell to the sampled run (best-of-iters on both sides); only set on
	// sampled entries.
	SpeedupVsExact float64 `json:"speedup_vs_exact,omitempty"`
	Totals         Totals  `json:"totals"`
	Runs           []Run   `json:"runs"`
}

// File is the BENCH_results.json layout. The fleet list is owned by
// cmd/loadgen and carried through verbatim so either command can merge
// its entries without dropping the other's.
type File struct {
	Schema  int               `json:"schema"`
	Matrix  string            `json:"matrix"`
	Entries []Entry           `json:"entries"`
	Fleet   []json.RawMessage `json:"fleet,omitempty"`
}

func main() {
	flags.SetUsage("bench", "run the tracked end-to-end benchmark matrix and merge the entry into BENCH_results.json")
	out := flag.String("out", "BENCH_results.json", "results file to merge the entry into")
	label := flag.String("label", "current", "entry label (same label replaces in place)")
	quick := flag.Bool("quick", false, "CI-sized matrix: 8 processors, ppn {1,4}, 1 iteration")
	procs := flag.Int("procs", 0, "machine size (default 16, or 8 with -quick)")
	iters := flag.Int("iters", 0, "timed iterations per cell, best taken (default 3, or 1 with -quick)")
	note := flag.String("note", "", "free-form note stored with the entry")
	fidelity := flag.String("fidelity", "exact",
		"execution fidelity: exact, or sampled (times the exact twin of every cell too and records speedup_vs_exact)")
	flag.Parse()

	sampled := false
	switch *fidelity {
	case "", machine.FidelityExact:
	case machine.FidelitySampled:
		sampled = true
	default:
		flags.Check("bench", fmt.Errorf("unknown fidelity %q (known: exact, sampled)", *fidelity))
	}

	if *procs == 0 {
		*procs = 16
		if *quick {
			*procs = 8
		}
	}
	if *iters == 0 {
		*iters = 3
		if *quick {
			*iters = 1
		}
	}
	ppns := []int{1, 2, 4}
	if *quick {
		ppns = []int{1, 4}
	}

	entry, err := benchMatrix(*procs, *iters, ppns, sampled)
	flags.Check("bench", err)
	entry.Label = *label
	entry.Quick = *quick
	entry.Note = *note
	entry.Date = time.Now().UTC().Format("2006-01-02T15:04:05Z")

	flags.Check("bench", merge(*out, entry))
	fmt.Printf("wrote %s entry %q: %.1f ns/ref, %.3g refs/sec, %.0f allocs/run, peak RSS %d MiB\n",
		*out, entry.Label, entry.Totals.NsPerRef, entry.Totals.RefsPerSec,
		entry.Totals.AllocsPerRun, entry.Totals.PeakRSSBytes>>20)
	if sampled {
		fmt.Printf("sampled fidelity: %.2fx wall-clock speedup vs the exact twin matrix\n", entry.SpeedupVsExact)
	}
}

// benchMatrix times every cell of the Figure 2 matrix: each run builds a
// fresh machine and simulates the full trace, so the numbers cover the
// whole per-run path (construction, simulation, result extraction).
func benchMatrix(procs, iters int, ppns []int, sampled bool) (Entry, error) {
	entry := Entry{
		Go:     runtime.Version(),
		NumCPU: runtime.NumCPU(),
		Procs:  procs,
		Iters:  iters,
	}
	if sampled {
		entry.Fidelity = machine.FidelitySampled
	}
	var totalNs, totalRefs, totalAllocs, totalExactNs int64
	for _, a := range apps.Registry {
		tr := a.Generate(procs)
		s := tr.Summarize()
		refs := s.Reads + s.Writes
		for _, ppn := range ppns {
			cfg := config.Baseline(ppn, config.MP6)
			cfg.Procs = procs
			if sampled {
				// Time the exact twin first so the entry carries a measured
				// speedup, not one extrapolated from an old baseline.
				exact, _, err := bestOf(iters, a.Name, cfg, tr)
				if err != nil {
					return entry, err
				}
				totalExactNs += exact
				cfg.Fidelity = config.Fidelity{Mode: machine.FidelitySampled}
			}
			best, allocs, err := bestOf(iters, a.Name, cfg, tr)
			if err != nil {
				return entry, err
			}
			entry.Runs = append(entry.Runs, Run{
				App: a.Name, PPN: ppn, MP: cfg.Pressure.Label,
				Refs: refs, NsBest: best,
				NsPerRef: float64(best) / float64(refs),
				Allocs:   allocs,
			})
			totalNs += best
			totalRefs += refs
			totalAllocs += allocs
			fmt.Fprintf(os.Stderr, "%-12s ppn=%d  %8.1f ns/ref  %9d allocs\n",
				a.Name, ppn, float64(best)/float64(refs), allocs)
		}
	}
	entry.Totals = Totals{
		NsPerRef:     float64(totalNs) / float64(totalRefs),
		RefsPerSec:   float64(totalRefs) / (float64(totalNs) / 1e9),
		AllocsPerRun: float64(totalAllocs) / float64(len(entry.Runs)),
		PeakRSSBytes: peakRSS(),
	}
	if sampled && totalNs > 0 {
		entry.SpeedupVsExact = float64(totalExactNs) / float64(totalNs)
	}
	return entry, nil
}

// bestOf runs one cell iters times and keeps the fastest wall clock and
// the lowest allocation count.
func bestOf(iters int, app string, cfg config.Machine, tr *trace.Trace) (int64, int64, error) {
	var best int64 = -1
	var allocs int64
	for it := 0; it < iters; it++ {
		ns, al, err := timeRun(app, cfg, tr)
		if err != nil {
			return 0, 0, err
		}
		if best < 0 || ns < best {
			best = ns
		}
		if it == 0 || al < allocs {
			allocs = al
		}
	}
	return best, allocs, nil
}

// timeRun measures one fresh-machine simulation: wall nanoseconds and
// heap allocation count (mallocs delta around the run).
func timeRun(app string, cfg config.Machine, tr *trace.Trace) (int64, int64, error) {
	runtime.GC()
	var m0, m1 runtime.MemStats
	runtime.ReadMemStats(&m0)
	start := time.Now()
	m, err := machine.New(cfg.Params(tr.WorkingSet))
	if err != nil {
		return 0, 0, fmt.Errorf("%s: %w", app, err)
	}
	res, err := m.Run(tr)
	if err != nil {
		return 0, 0, fmt.Errorf("%s: %w", app, err)
	}
	elapsed := time.Since(start).Nanoseconds()
	m.Release()
	runtime.ReadMemStats(&m1)
	_ = res
	return elapsed, int64(m1.Mallocs - m0.Mallocs), nil
}

// peakRSS reads the process high-water resident set from /proc (linux);
// 0 elsewhere.
func peakRSS() int64 {
	f, err := os.Open("/proc/self/status")
	if err != nil {
		return 0
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "VmHWM:") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			return 0
		}
		kb, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			return 0
		}
		return kb << 10
	}
	return 0
}

// merge loads the results file (if any), replaces the entry with the same
// label or appends, and writes it back.
func merge(path string, e Entry) error {
	file := File{Schema: 1, Matrix: "figure2-mp6"}
	if raw, err := os.ReadFile(path); err == nil {
		if err := json.Unmarshal(raw, &file); err != nil {
			return fmt.Errorf("%s: %w", path, err)
		}
	}
	replaced := false
	for i := range file.Entries {
		if file.Entries[i].Label == e.Label {
			file.Entries[i] = e
			replaced = true
			break
		}
	}
	if !replaced {
		file.Entries = append(file.Entries, e)
	}
	raw, err := json.MarshalIndent(file, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(raw, '\n'), 0o644)
}
