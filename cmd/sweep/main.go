// Command sweep runs a cartesian parameter sweep (applications x
// clustering x memory pressure x associativity x bandwidths) and emits
// one CSV row per simulated point, for plotting or regression tracking.
//
//	go run ./cmd/sweep -apps fft,radix -ppn 1,4 -mp 50%,81% > sweep.csv
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/config"
	"repro/internal/config/flags"
	"repro/internal/experiments"
)

func main() {
	flags.SetUsage("sweep", "run a cartesian parameter sweep and emit one CSV row per simulated point")
	apps := flag.String("apps", "", "comma-separated workloads (default: all 14)")
	ppn := flag.String("ppn", "1,2,4", "comma-separated processors per node")
	mps := flag.String("mp", "", "comma-separated pressures, e.g. 6%,50% (default: all 5)")
	ways := flag.String("ways", "4", "comma-separated AM associativities")
	dram := flag.String("dram", "1", "comma-separated DRAM bandwidth multipliers")
	topology := flag.String("topology", "", "interconnect topology for every point: bus (default) or ring")
	clusters := flag.Int("clusters", 0, "ring cluster count (0 = one cluster per node)")
	linkLat := flag.Int("linklat", 0, "ring link latency in ns (0 = default, -1 = explicitly zero)")
	scalePressure := flag.Bool("scale-pressure", false, "hold the fractional memory pressure constant at non-paper machine sizes")
	fidelity := flags.Fidelity()
	verbose := flags.Verbose()
	dryRun := flag.Bool("n", false, "print the point count and exit")
	jobs := flags.Jobs()
	flag.Parse()

	spec := experiments.SweepSpec{
		Apps:          splitList(*apps),
		ProcsPerNode:  mustInts(*ppn),
		AMWays:        mustInts(*ways),
		DRAM:          mustFloats(*dram),
		Topology:      *topology,
		Clusters:      *clusters,
		LinkLatencyNs: *linkLat,
		ScalePressure: *scalePressure,
	}
	for _, label := range splitList(*mps) {
		p, err := config.PressureByLabel(label)
		if err != nil {
			fatal(err)
		}
		spec.Pressures = append(spec.Pressures, p)
	}
	if *dryRun {
		fmt.Printf("%d points\n", spec.Points())
		return
	}
	r := experiments.NewRunner()
	r.Jobs = *jobs
	r.Fidelity = fidelity()
	if *verbose {
		r.Progress = os.Stderr
	}
	rows, err := r.Sweep(spec)
	if err != nil {
		fatal(err)
	}
	if err := experiments.WriteSweepCSV(os.Stdout, rows); err != nil {
		fatal(err)
	}
}

func splitList(s string) []string {
	if s == "" {
		return nil
	}
	return strings.Split(s, ",")
}

func mustInts(s string) []int {
	var out []int
	for _, f := range splitList(s) {
		v, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil {
			fatal(err)
		}
		out = append(out, v)
	}
	return out
}

func mustFloats(s string) []float64 {
	var out []float64
	for _, f := range splitList(s) {
		v, err := strconv.ParseFloat(strings.TrimSpace(f), 64)
		if err != nil {
			fatal(err)
		}
		out = append(out, v)
	}
	return out
}

func fatal(err error) {
	flags.Check("sweep", err)
}
