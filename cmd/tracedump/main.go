// Command tracedump generates workload traces and prints their summary
// statistics: footprint, reference counts, sharing degree and generation
// time. Useful for inspecting and tuning the workload kernels, and as
// the client path for comasrv trace ingestion: -upload posts each
// generated trace in the compact wire format (TRACES.md) and prints the
// digest to simulate it by reference.
package main

import (
	"bytes"
	"context"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"repro/internal/apps"
	"repro/internal/config/flags"
	"repro/internal/server"
	"repro/internal/trace"
)

func main() {
	flags.SetUsage("tracedump", "generate workload traces and print their summary statistics")
	only := flag.String("app", "", "generate only this application (default: all, extras included)")
	procs := flags.Procs(16)
	saveDir := flag.String("save", "", "serialize generated traces into this directory")
	compact := flag.Bool("compact", false, "serialize with -save in the compact COMATRC2 wire format instead of the boxed format")
	load := flag.String("load", "", "summarize a serialized trace file instead of generating (both formats auto-detected)")
	upload := flag.String("upload", "", "POST each generated trace to this comasrv base URL (e.g. http://127.0.0.1:8080) and print its digest")
	flag.Parse()

	if *load != "" {
		tr, err := loadTrace(*load)
		if err != nil {
			fatal(err)
		}
		summarize(tr, 0)
		return
	}

	var client *server.Client
	if *upload != "" {
		client = server.NewClient(*upload)
	}

	fmt.Printf("%-11s %8s %9s %9s %9s %9s %9s %9s %8s\n",
		"app", "ws(KB)", "reads", "writes", "acquires", "barriers", "lines", "shared", "gen(s)")
	for _, app := range apps.All() {
		if *only != "" && app.Name != *only {
			continue
		}
		start := time.Now()
		tr := app.Generate(*procs)
		el := time.Since(start)
		if err := tr.Validate(); err != nil {
			fatal(fmt.Errorf("%s: %w", app.Name, err))
		}
		summarize(tr, el.Seconds())
		if *saveDir != "" {
			if err := saveTrace(tr, *saveDir, *compact); err != nil {
				fatal(err)
			}
		}
		if client != nil {
			meta, err := client.UploadTrace(context.Background(), tr.EncodeCompact())
			if err != nil {
				fatal(fmt.Errorf("%s: upload: %w", app.Name, err))
			}
			fmt.Printf("  uploaded %s -> trace_ref %s (%d bytes)\n", app.Name, meta.Digest, meta.SizeBytes)
		}
	}
}

// loadTrace reads either serialization format, sniffed by magic prefix.
func loadTrace(path string) (*trace.Trace, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	if bytes.HasPrefix(raw, []byte(trace.CompactMagic)) {
		return trace.DecodeCompact(raw)
	}
	return trace.ReadTrace(bytes.NewReader(raw))
}

func summarize(tr *trace.Trace, genSeconds float64) {
	s := tr.Summarize()
	fmt.Printf("%-11s %8d %9d %9d %9d %9d %9d %9d %8.2f\n",
		tr.Name, tr.WorkingSet/1024, s.Reads, s.Writes, s.Acquires, s.Barriers,
		s.DistinctLines, s.SharedLines, genSeconds)
}

func saveTrace(tr *trace.Trace, dir string, compact bool) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	path := filepath.Join(dir, tr.Name+".trace")
	if compact {
		return os.WriteFile(path, tr.EncodeCompact(), 0o644)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if _, err := tr.WriteTo(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func fatal(err error) {
	flags.Check("tracedump", err)
}
