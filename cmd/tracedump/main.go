// Command tracedump generates workload traces and prints their summary
// statistics: footprint, reference counts, sharing degree and generation
// time. Useful for inspecting and tuning the workload kernels.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"repro/internal/apps"
	"repro/internal/config/flags"
	"repro/internal/trace"
)

func main() {
	flags.SetUsage("tracedump", "generate workload traces and print their summary statistics")
	only := flag.String("app", "", "generate only this application (default: all)")
	procs := flags.Procs(16)
	saveDir := flag.String("save", "", "serialize generated traces into this directory")
	load := flag.String("load", "", "summarize a serialized trace file instead of generating")
	flag.Parse()

	if *load != "" {
		f, err := os.Open(*load)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		tr, err := trace.ReadTrace(f)
		if err != nil {
			fatal(err)
		}
		summarize(tr, 0)
		return
	}

	fmt.Printf("%-10s %8s %9s %9s %9s %9s %9s %9s %8s\n",
		"app", "ws(KB)", "reads", "writes", "acquires", "barriers", "lines", "shared", "gen(s)")
	for _, app := range apps.Registry {
		if *only != "" && app.Name != *only {
			continue
		}
		start := time.Now()
		tr := app.Generate(*procs)
		el := time.Since(start)
		if err := tr.Validate(); err != nil {
			fatal(fmt.Errorf("%s: %w", app.Name, err))
		}
		summarize(tr, el.Seconds())
		if *saveDir != "" {
			if err := saveTrace(tr, *saveDir); err != nil {
				fatal(err)
			}
		}
	}
}

func summarize(tr *trace.Trace, genSeconds float64) {
	s := tr.Summarize()
	fmt.Printf("%-10s %8d %9d %9d %9d %9d %9d %9d %8.2f\n",
		tr.Name, tr.WorkingSet/1024, s.Reads, s.Writes, s.Acquires, s.Barriers,
		s.DistinctLines, s.SharedLines, genSeconds)
}

func saveTrace(tr *trace.Trace, dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	path := filepath.Join(dir, tr.Name+".trace")
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if _, err := tr.WriteTo(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func fatal(err error) {
	flags.Check("tracedump", err)
}
